(* Adversarial suite for the hand-rolled JSON layer and the record codec.

   The emitter feeds daemon replies and cache files, the parser reads them
   back; a single mis-escaped control character or a non-finite float
   leaking through would corrupt a persistence file and poison every
   session that loads it. So this suite attacks exactly those edges:
   control characters, NaN/infinity, \u escapes, numeric round-trips, and
   a QCheck property that [parse] inverts [to_string] for arbitrary
   values at both indentations. *)

module Json = Report.Json

let json_t = Alcotest.testable Json.pp Json.equal

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let parse_err s =
  match Json.parse s with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "parse %S should fail, got %a" s Json.pp v

(* --------------------------------------------------------------- emitter *)

let test_control_chars_escaped () =
  (* every byte below 0x20 must leave as an escape, never raw *)
  let s = String.init 32 Char.chr in
  let out = Json.to_string ~indent:0 (Json.String s) in
  String.iter
    (fun c ->
      if Char.code c < 0x20 then
        Alcotest.failf "raw control byte %#x in emitted string %S"
          (Char.code c) out)
    out;
  Alcotest.check json_t "all 32 control chars round-trip" (Json.String s)
    (parse_ok out)

let test_short_escapes () =
  Alcotest.(check string)
    "named escapes preferred over \\u form" "\"a\\nb\\tc\\rd\\\\e\\\"f\\u0001\""
    (Json.to_string ~indent:0 (Json.String "a\nb\tc\rd\\e\"f\x01"))

let test_non_finite_floats () =
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Fmt.str "%h serialises as null" f)
        "null"
        (Json.to_string ~indent:0 (Json.Float f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_float_round_trip () =
  (* exact values survive text: the emitter prints shortest-exact *)
  List.iter
    (fun f ->
      let v = parse_ok (Json.to_string ~indent:0 (Json.Float f)) in
      match v with
      | Json.Float g ->
        Alcotest.(check bool)
          (Fmt.str "%h survives" f)
          true
          (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | Json.Int i ->
        Alcotest.(check (float 0.)) "integral float" f (float_of_int i)
      | _ -> Alcotest.failf "float reparsed as %a" Json.pp v)
    [ 0.1; 1. /. 3.; 1e-300; 1.7976931348623157e308; 4e-324; -0.5 ]

(* ---------------------------------------------------------------- parser *)

let test_rejects_raw_control () = parse_err "\"a\nb\""
let test_rejects_trailing_garbage () = parse_err "{\"a\":1} x"
let test_rejects_unterminated () = parse_err "\"abc"
let test_rejects_bad_escape () = parse_err {|"\q"|}
let test_rejects_lone_value_garbage () = parse_err "tru"

(* hostile nesting must be a typed error, not a stack overflow *)
let test_depth_cap () =
  let deep n = String.make n '[' ^ "0" ^ String.make n ']' in
  (* comfortably deep documents still parse... *)
  (match Json.parse (deep 200) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth 200 should parse: %s" msg);
  (* ...but past the cap it's an error, even at bomb sizes *)
  parse_err (deep 257);
  parse_err (deep 100_000);
  let deep_obj n =
    let b = Buffer.create (8 * n) in
    for _ = 1 to n do
      Buffer.add_string b {|{"k":|}
    done;
    Buffer.add_string b "0";
    for _ = 1 to n do
      Buffer.add_char b '}'
    done;
    Buffer.contents b
  in
  (match Json.parse (deep_obj 200) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "object depth 200 should parse: %s" msg);
  parse_err (deep_obj 100_000)

let test_unicode_escapes () =
  (* BMP escapes decode to UTF-8 bytes: A, é, € *)
  Alcotest.check json_t "\\u down to UTF-8"
    (Json.String "A\xc3\xa9\xe2\x82\xac")
    (parse_ok "\"\\u0041\\u00e9\\u20ac\"")

let test_number_shapes () =
  Alcotest.check json_t "integral literal lexes Int" (Json.Int 42)
    (parse_ok "42");
  Alcotest.check json_t "negative Int" (Json.Int (-7)) (parse_ok "-7");
  Alcotest.check json_t "decimal lexes Float" (Json.Float 1.5)
    (parse_ok "1.5");
  Alcotest.check json_t "exponent lexes Float" (Json.Float 200.)
    (parse_ok "2e2");
  (* "-0" must stay a float or re-serialisation would turn it into "0" *)
  (match parse_ok "-0" with
  | Json.Float f ->
    Alcotest.(check bool) "-0 keeps its sign bit" true (1. /. f < 0.)
  | v -> Alcotest.failf "-0 parsed as %a" Json.pp v);
  parse_err "1e";
  parse_err "--1"

let test_field_order_significant () =
  let a = parse_ok {|{"x":1,"y":2}|} and b = parse_ok {|{"y":2,"x":1}|} in
  Alcotest.(check bool) "order matters for equal" false (Json.equal a b)

(* ------------------------------------------------- round-trip property *)

let json_gen =
  let open QCheck.Gen in
  (* strings biased towards the hostile range *)
  let hostile_char =
    frequency
      [ (2, char_range '\x00' '\x1f'); (1, return '"'); (1, return '\\');
        (6, printable) ]
  in
  let str = string_size ~gen:hostile_char (int_range 0 12) in
  let base =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) str ]
  in
  let rec value n =
    if n = 0 then base
    else
      frequency
        [ (3, base);
          (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (value (n - 1))));
          ( 1,
            map
              (fun l -> Json.Obj l)
              (list_size (int_range 0 4) (pair str (value (n - 1)))) ) ]
  in
  value 3

let prop_round_trip indent =
  QCheck.Test.make ~count:500
    ~name:(Fmt.str "parse inverts to_string ~indent:%d" indent)
    (QCheck.make ~print:(Fmt.str "%a" Json.pp) json_gen)
    (fun v ->
      match Json.parse (Json.to_string ~indent v) with
      | Ok v' -> Json.equal v v'
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg)

(* ----------------------------------------------------- record codec *)

let route_record bench =
  let req =
    {
      Service.Protocol.source = `Bench bench;
      arch = "tokyo";
      durations = "sc";
      router = "codar";
      placement = "sabre";
      objective = None;
      metric = None;
      restarts = 4;
      seed = 0;
      collect_stats = true;
    }
  in
  match Service.Engine.spec_of_route_req req with
  | Error msg -> Alcotest.failf "spec: %s" msg
  | Ok spec -> fst (Service.Engine.route spec)

let test_record_round_trip () =
  let r = route_record "qft_4" in
  let j = Report.Record.to_json r in
  match Report.Record.of_json j with
  | Error msg -> Alcotest.failf "of_json: %s" msg
  | Ok r' ->
    Alcotest.(check string)
      "of_json ∘ to_json re-serialises byte-identically"
      (Json.to_string ~indent:0 j)
      (Json.to_string ~indent:0 (Report.Record.to_json r'))

let test_record_survives_text () =
  (* the full persistence path: serialise, print, parse, decode *)
  let r = route_record "ghz_8" in
  let text = Json.to_string ~indent:0 (Report.Record.to_json r) in
  match Result.bind (Json.parse text) Report.Record.of_json with
  | Error msg -> Alcotest.failf "text round-trip: %s" msg
  | Ok r' ->
    Alcotest.(check string)
      "text round-trip is byte-stable" text
      (Json.to_string ~indent:0 (Report.Record.to_json r'))

let () =
  Alcotest.run "report"
    [
      ( "emitter",
        [
          Alcotest.test_case "control chars escaped" `Quick
            test_control_chars_escaped;
          Alcotest.test_case "short escapes" `Quick test_short_escapes;
          Alcotest.test_case "non-finite floats" `Quick test_non_finite_floats;
          Alcotest.test_case "float round-trip" `Quick test_float_round_trip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "rejects raw control chars" `Quick
            test_rejects_raw_control;
          Alcotest.test_case "rejects trailing garbage" `Quick
            test_rejects_trailing_garbage;
          Alcotest.test_case "rejects unterminated string" `Quick
            test_rejects_unterminated;
          Alcotest.test_case "rejects bad escape" `Quick test_rejects_bad_escape;
          Alcotest.test_case "depth cap" `Quick test_depth_cap;
          Alcotest.test_case "rejects truncated literal" `Quick
            test_rejects_lone_value_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
          Alcotest.test_case "number shapes" `Quick test_number_shapes;
          Alcotest.test_case "field order significant" `Quick
            test_field_order_significant;
        ] );
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest (prop_round_trip 0);
          QCheck_alcotest.to_alcotest (prop_round_trip 2);
        ] );
      ( "record",
        [
          Alcotest.test_case "of_json inverts to_json" `Quick
            test_record_round_trip;
          Alcotest.test_case "record survives text" `Quick
            test_record_survives_text;
        ] );
    ]
