(* Tests for the [schedule] library: ASAP timing, routed-result helpers and
   the three-level verifier. *)

let sc = Arch.Durations.superconducting

let maqam_linear4 =
  Arch.Maqam.make ~coupling:(Arch.Devices.linear 4) ~durations:sc

(* ------------------------------------------------------------------- asap *)

let test_asap_serial_chain () =
  let gates = [ Qc.Gate.h 0; Qc.Gate.cx 0 1; Qc.Gate.h 1 ] in
  let events, makespan = Schedule.Asap.schedule ~durations:sc ~n_physical:2 gates in
  let starts = List.map (fun e -> e.Schedule.Routed.start) events in
  Alcotest.(check (list int)) "starts" [ 0; 1; 3 ] starts;
  Alcotest.(check int) "makespan" 4 makespan

let test_asap_parallel () =
  let gates = [ Qc.Gate.h 0; Qc.Gate.h 1; Qc.Gate.cx 2 3 ] in
  let _, makespan = Schedule.Asap.schedule ~durations:sc ~n_physical:4 gates in
  Alcotest.(check int) "parallel makespan" 2 makespan

let test_asap_barrier () =
  (* barrier on {0,1} forces the later h 1 to wait for h 0's finish *)
  let gates =
    [ Qc.Gate.cx 0 1; Qc.Gate.barrier [ 0; 1; 2 ]; Qc.Gate.h 2 ]
  in
  let events, _ = Schedule.Asap.schedule ~durations:sc ~n_physical:3 gates in
  let h2 = List.nth events 2 in
  Alcotest.(check int) "h2 fenced behind cx" 2 h2.Schedule.Routed.start;
  (* empty-list barrier fences the whole device *)
  let gates = [ Qc.Gate.cx 0 1; Qc.Gate.barrier []; Qc.Gate.h 3 ] in
  let events, _ = Schedule.Asap.schedule ~durations:sc ~n_physical:4 gates in
  Alcotest.(check int) "global fence" 2
    (List.nth events 2).Schedule.Routed.start

let test_asap_durations_used () =
  let gates = [ Qc.Gate.swap 0 1; Qc.Gate.cx 0 1 ] in
  let _, makespan = Schedule.Asap.schedule ~durations:sc ~n_physical:2 gates in
  Alcotest.(check int) "swap then cx" 8 makespan

(* ----------------------------------------------------------------- routed *)

let route_linear4 gates =
  let circuit = Qc.Circuit.make ~n_qubits:4 gates in
  let initial = Arch.Layout.identity ~n_logical:4 ~n_physical:4 in
  (circuit, Codar.Remapper.run ~maqam:maqam_linear4 ~initial circuit)

let test_routed_helpers () =
  let _, r = route_linear4 [ Qc.Gate.cx 0 3; Qc.Gate.h 1 ] in
  Alcotest.(check bool) "swap count positive" true (Schedule.Routed.swap_count r > 0);
  Alcotest.(check int) "gate count = events" (List.length r.events)
    (Schedule.Routed.gate_count r);
  let phys = Schedule.Routed.to_physical_circuit ~n_physical:4 r in
  Alcotest.(check int) "physical circuit width" 4 (Qc.Circuit.n_qubits phys);
  let sorted = Schedule.Routed.events_by_start r in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
      a.Schedule.Routed.start <= b.Schedule.Routed.start && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "events_by_start sorted" true (nondecreasing sorted)

(* ----------------------------------------------------------------- verify *)

let test_verify_ok () =
  let circuit, r =
    route_linear4 [ Qc.Gate.h 0; Qc.Gate.cx 0 3; Qc.Gate.t 2 ]
  in
  (match Schedule.Verify.check_all ~maqam:maqam_linear4 ~original:circuit r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected OK, got %a" Schedule.Verify.pp_error e)

let event ?(inserted = false) gate start duration =
  { Schedule.Routed.gate; start; duration; inserted }

let manual_result events =
  let initial = Arch.Layout.identity ~n_logical:4 ~n_physical:4 in
  {
    Schedule.Routed.events;
    initial;
    final = initial;
    makespan =
      List.fold_left (fun acc e -> max acc (Schedule.Routed.finish e)) 0 events;
    n_logical = 4;
  }

let test_verify_not_adjacent () =
  let r = manual_result [ event (Qc.Gate.cx 0 2) 0 2 ] in
  match Schedule.Verify.check_hardware ~maqam:maqam_linear4 r with
  | Error (Schedule.Verify.Not_adjacent _) -> ()
  | Ok () -> Alcotest.fail "expected Not_adjacent"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e

let test_verify_overlap () =
  let r =
    manual_result [ event (Qc.Gate.cx 0 1) 0 2; event (Qc.Gate.h 1) 1 1 ]
  in
  match Schedule.Verify.check_hardware ~maqam:maqam_linear4 r with
  | Error (Schedule.Verify.Overlap (1, _, _)) -> ()
  | Ok () -> Alcotest.fail "expected Overlap"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e

let test_verify_bad_duration () =
  let r = manual_result [ event (Qc.Gate.cx 0 1) 0 7 ] in
  match Schedule.Verify.check_timing ~maqam:maqam_linear4 r with
  | Error (Schedule.Verify.Bad_duration (_, 2)) -> ()
  | Ok () -> Alcotest.fail "expected Bad_duration"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e

let test_verify_final_layout () =
  (* an inserted SWAP event not reflected in [final] must be caught *)
  let r = manual_result [ event ~inserted:true (Qc.Gate.swap 0 1) 0 6 ] in
  match Schedule.Verify.replay_logical r with
  | Error Schedule.Verify.Bad_final_layout -> ()
  | Ok _ -> Alcotest.fail "expected Bad_final_layout"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e

let test_verify_equivalence_tamper () =
  (* routed result drops a gate: equivalence must fail *)
  let original =
    Qc.Circuit.make ~n_qubits:4 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ]
  in
  let r = manual_result [ event (Qc.Gate.h 0) 0 1 ] in
  (match Schedule.Verify.check_equivalence ~original r with
  | Error (Schedule.Verify.Leftover_original_gates 1) -> ()
  | Ok () -> Alcotest.fail "expected Leftover"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e);
  (* routed result contains a foreign gate *)
  let r =
    manual_result
      [ event (Qc.Gate.h 0) 0 1; event (Qc.Gate.x 1) 1 1;
        event (Qc.Gate.cx 0 1) 2 2 ]
  in
  match Schedule.Verify.check_equivalence ~original r with
  | Error (Schedule.Verify.Unmatched_logical_gate _) -> ()
  | Ok () -> Alcotest.fail "expected Unmatched"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e

let test_verify_reorder_rules () =
  (* commuting reorder accepted: the two CX share a target *)
  let original =
    Qc.Circuit.make ~n_qubits:4 [ Qc.Gate.cx 0 1; Qc.Gate.cx 2 1 ]
  in
  let r =
    manual_result
      [ event (Qc.Gate.cx 2 1) 0 2; event (Qc.Gate.cx 0 1) 2 2 ]
  in
  (match Schedule.Verify.check_equivalence ~original r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "commuting reorder rejected: %a" Schedule.Verify.pp_error e);
  (* non-commuting reorder rejected: control/target chain *)
  let original =
    Qc.Circuit.make ~n_qubits:4 [ Qc.Gate.cx 0 1; Qc.Gate.cx 1 2 ]
  in
  let r =
    manual_result
      [ event (Qc.Gate.cx 1 2) 0 2; event (Qc.Gate.cx 0 1) 2 2 ]
  in
  match Schedule.Verify.check_equivalence ~original r with
  | Error (Schedule.Verify.Unmatched_logical_gate _) -> ()
  | Ok () -> Alcotest.fail "non-commuting reorder accepted"
  | Error e -> Alcotest.failf "wrong error %a" Schedule.Verify.pp_error e

(* --------------------------------------------------------- verify edges *)

let check_all_routers ~maqam circuit =
  let initial =
    Arch.Layout.identity ~n_logical:(Qc.Circuit.n_qubits circuit)
      ~n_physical:(Arch.Maqam.n_qubits maqam)
  in
  List.map
    (fun (name, run) ->
      let routed = run ~maqam ~initial circuit in
      (match Schedule.Verify.check_all ~maqam ~original:circuit routed with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s fails verification: %a" name
          Schedule.Verify.pp_error e);
      (name, routed))
    [
      ("codar", fun ~maqam ~initial c -> Codar.Remapper.run ~maqam ~initial c);
      ("sabre", fun ~maqam ~initial c -> Sabre.Router.run ~maqam ~initial c);
      ("astar", fun ~maqam ~initial c -> Astar.Router.run ~maqam ~initial c);
    ]

(* Zero-duration events (barriers) must be exempt from overlap checking
   yet still verified — and they must not add to the weighted depth. *)
let test_verify_zero_duration_events () =
  let circuit =
    Qc.Circuit.make ~n_qubits:3
      [
        Qc.Gate.h 0;
        Qc.Gate.barrier [ 0; 1; 2 ];
        Qc.Gate.cx 0 1;
        Qc.Gate.barrier [ 0; 1 ];
        Qc.Gate.barrier [ 0; 1; 2 ];
        Qc.Gate.h 2;
      ]
  in
  List.iter
    (fun (_, routed) ->
      List.iter
        (fun (e : Schedule.Routed.event) ->
          match e.gate with
          | Qc.Gate.Barrier _ ->
            Alcotest.(check int) "barrier has zero duration" 0 e.duration
          | _ -> ())
        routed.Schedule.Routed.events)
    (check_all_routers ~maqam:maqam_linear4 circuit);
  (* back-to-back barriers on the same qubits: legal, not an Overlap *)
  let fences =
    Qc.Circuit.make ~n_qubits:2
      [ Qc.Gate.barrier [ 0; 1 ]; Qc.Gate.barrier [ 0; 1 ] ]
  in
  ignore (check_all_routers ~maqam:maqam_linear4 fences)

(* A single-qubit-only circuit needs no SWAPs anywhere; the weighted
   depth is the longest per-qubit chain under the duration model. *)
let test_verify_single_qubit_only () =
  let circuit =
    Qc.Circuit.make ~n_qubits:4
      [
        Qc.Gate.h 0; Qc.Gate.t 0; Qc.Gate.rx 0.4 0;
        Qc.Gate.x 1; Qc.Gate.z 3;
      ]
  in
  List.iter
    (fun (name, routed) ->
      Alcotest.(check int) (name ^ " inserts no swaps") 0
        (Schedule.Routed.swap_count routed);
      (* three 1-cycle gates on qubit 0 dominate *)
      Alcotest.(check int) (name ^ " weighted depth") 3
        routed.Schedule.Routed.makespan)
    (check_all_routers ~maqam:maqam_linear4 circuit)

(* Every CF gate already adjacent: zero SWAPs, and the serial CX chain's
   weighted depth is exactly 3 x two_qubit = 6 on the superconducting
   model. *)
let test_verify_all_adjacent_chain () =
  let circuit =
    Qc.Circuit.make ~n_qubits:4
      [ Qc.Gate.cx 0 1; Qc.Gate.cx 1 2; Qc.Gate.cx 2 3 ]
  in
  List.iter
    (fun (name, routed) ->
      Alcotest.(check int) (name ^ " inserts no swaps") 0
        (Schedule.Routed.swap_count routed);
      Alcotest.(check int) (name ^ " weighted depth") 6
        routed.Schedule.Routed.makespan)
    (check_all_routers ~maqam:maqam_linear4 circuit)

(* Zero-gate and measure-only circuits: degenerate but legal inputs. *)
let test_verify_degenerate_circuits () =
  List.iter
    (fun (_, routed) ->
      Alcotest.(check int) "no events" 0
        (List.length routed.Schedule.Routed.events);
      Alcotest.(check int) "zero makespan" 0 routed.Schedule.Routed.makespan)
    (check_all_routers ~maqam:maqam_linear4 (Qc.Circuit.empty 3));
  List.iter
    (fun (name, routed) ->
      Alcotest.(check int) (name ^ " no swaps") 0
        (Schedule.Routed.swap_count routed);
      (* one measure per qubit, all parallel: depth = measure duration *)
      Alcotest.(check int) (name ^ " makespan") 5
        routed.Schedule.Routed.makespan)
    (check_all_routers ~maqam:maqam_linear4
       (Qc.Circuit.make ~n_qubits:3
          [ Qc.Gate.measure 0 0; Qc.Gate.measure 1 1; Qc.Gate.measure 2 2 ]))

let test_reschedule () =
  let circuit, r = route_linear4 [ Qc.Gate.cx 0 3; Qc.Gate.h 1 ] in
  let r' = Schedule.Asap.reschedule ~durations:sc ~n_physical:4 r in
  (* replaying CODAR's issue order with ASAP can only help or match *)
  Alcotest.(check bool) "reschedule no worse" true
    (r'.Schedule.Routed.makespan <= r.Schedule.Routed.makespan);
  match Schedule.Verify.check_all ~maqam:maqam_linear4 ~original:circuit r' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rescheduled fails: %a" Schedule.Verify.pp_error e

(* ------------------------------------------------------------------ stats *)

let test_stats () =
  let circuit = Qc.Circuit.make ~n_qubits:4 [ Qc.Gate.cx 0 3; Qc.Gate.h 1 ] in
  let initial = Arch.Layout.identity ~n_logical:4 ~n_physical:4 in
  let r = Codar.Remapper.run ~maqam:maqam_linear4 ~initial circuit in
  let s = Schedule.Stats.of_routed ~n_physical:4 ~original:circuit r in
  Alcotest.(check int) "makespan agrees" r.makespan s.Schedule.Stats.makespan;
  Alcotest.(check bool) "positive parallelism" true
    (s.Schedule.Stats.parallelism >= 1.);
  Alcotest.(check bool) "swap overhead = swaps / gates" true
    (Float.abs
       (s.Schedule.Stats.swap_overhead
       -. (float_of_int (Schedule.Routed.swap_count r) /. 2.))
    < 1e-9);
  Array.iter
    (fun u ->
      Alcotest.(check bool) "utilization in [0,1]" true (u >= 0. && u <= 1.))
    s.Schedule.Stats.utilization

let test_stats_csv () =
  let circuit = Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ] in
  let events, makespan =
    Schedule.Asap.schedule ~durations:sc ~n_physical:2
      (Qc.Circuit.gates circuit)
  in
  let r =
    {
      Schedule.Routed.events;
      initial = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      final = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      makespan;
      n_logical = 2;
    }
  in
  let csv = Schedule.Stats.to_csv r in
  Alcotest.(check (list string)) "csv lines"
    [ "start,finish,gate,qubits"; "0,1,h,0"; "1,3,cx,0 1"; "" ]
    (String.split_on_char '\n' csv)

let test_gantt_renders () =
  let circuit = Qc.Circuit.make ~n_qubits:3 [ Qc.Gate.cx 0 2; Qc.Gate.t 1 ] in
  let initial = Arch.Layout.identity ~n_logical:3 ~n_physical:4 in
  let r = Codar.Remapper.run ~maqam:maqam_linear4 ~initial circuit in
  let rendered =
    Fmt.str "%a" (Schedule.Stats.pp_gantt ?width:None ~n_physical:4) r
  in
  Alcotest.(check int) "one row per qubit + axis" 5
    (List.length (String.split_on_char '\n' rendered))

let () =
  Alcotest.run "schedule"
    [
      ( "asap",
        [
          Alcotest.test_case "serial chain" `Quick test_asap_serial_chain;
          Alcotest.test_case "parallel" `Quick test_asap_parallel;
          Alcotest.test_case "barrier" `Quick test_asap_barrier;
          Alcotest.test_case "durations" `Quick test_asap_durations_used;
        ] );
      ("routed", [ Alcotest.test_case "helpers" `Quick test_routed_helpers ]);
      ( "verify",
        [
          Alcotest.test_case "ok" `Quick test_verify_ok;
          Alcotest.test_case "not adjacent" `Quick test_verify_not_adjacent;
          Alcotest.test_case "overlap" `Quick test_verify_overlap;
          Alcotest.test_case "bad duration" `Quick test_verify_bad_duration;
          Alcotest.test_case "final layout" `Quick test_verify_final_layout;
          Alcotest.test_case "tampering" `Quick test_verify_equivalence_tamper;
          Alcotest.test_case "reorder rules" `Quick test_verify_reorder_rules;
          Alcotest.test_case "zero-duration events" `Quick
            test_verify_zero_duration_events;
          Alcotest.test_case "single-qubit-only circuit" `Quick
            test_verify_single_qubit_only;
          Alcotest.test_case "all-adjacent chain" `Quick
            test_verify_all_adjacent_chain;
          Alcotest.test_case "degenerate circuits" `Quick
            test_verify_degenerate_circuits;
          Alcotest.test_case "reschedule" `Quick test_reschedule;
        ] );
      ( "stats",
        [
          Alcotest.test_case "metrics" `Quick test_stats;
          Alcotest.test_case "csv" `Quick test_stats_csv;
          Alcotest.test_case "gantt" `Quick test_gantt_renders;
        ] );
    ]
