(* End-to-end suite for the compile daemon, run in-process: each test
   boots a real [Service.Server] on a /tmp socket (Unix-domain paths are
   length-limited, so never under _build), talks to it over real
   connections, and joins it cleanly.

   What is pinned here is the service contract from docs/SERVICE.md:
   byte-identical replay on cache hits (including hits that arrive as
   differently-formatted QASM text), exactly one computation under
   concurrent duplicate requests (proved by the coalescing counters, made
   deterministic with the [on_route_start] gate), graceful degradation on
   malformed/oversized/vanishing clients, and cache persistence across
   daemon restarts. *)

module Json = Report.Json

let temp_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "codar-%s-%d.sock" tag (Unix.getpid ()))

(* ---------------------------------------------------- server scaffolding *)

type server = {
  thread : Thread.t;
  outcome : (Codar.Stats.service, exn) result option ref;
}

(* Boot [Server.run] on its own thread and block until the socket listens;
   a bind failure releases the waiter too (by raising here). *)
let start cfg =
  let m = Mutex.create () and c = Condition.create () in
  let ready = ref false in
  let outcome = ref None in
  let release () =
    Mutex.lock m;
    ready := true;
    Condition.signal c;
    Mutex.unlock m
  in
  let thread =
    Thread.create
      (fun () ->
        (match Service.Server.run ~on_ready:release cfg with
        | s -> outcome := Some (Ok s)
        | exception e -> outcome := Some (Error e));
        release ())
      ()
  in
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  (match !outcome with
  | Some (Error e) ->
    Thread.join thread;
    raise e
  | Some (Ok _) | None -> ());
  { thread; outcome }

let join server =
  Thread.join server.thread;
  match !(server.outcome) with
  | Some (Ok s) -> s
  | Some (Error e) -> raise e
  | None -> Alcotest.fail "server thread finished without an outcome"

let request sock frame =
  Service.Client.with_connection sock (fun t -> Service.Client.request t frame)

let shutdown_and_join sock server =
  let reply = request sock {|{"op":"shutdown"}|} in
  Alcotest.(check string) "shutdown acknowledged"
    {|{"ok":true,"op":"shutdown"}|} reply;
  join server

let parse_reply line =
  match Json.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable reply %S: %s" line msg

let reply_ok line =
  match Json.member "ok" (parse_reply line) with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "reply without ok field: %S" line

let reply_code line =
  match Json.member "code" (parse_reply line) with
  | Some (Json.String c) -> c
  | _ -> Alcotest.failf "error reply without code: %S" line

let counter path line =
  let j = parse_reply line in
  match
    List.fold_left
      (fun acc key -> Option.bind acc (Json.member key))
      (Some j) path
  with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "no %s counter in %S" (String.concat "." path) line

let route_qft4 = {|{"op":"route","bench":"qft_4","restarts":2}|}

(* --------------------------------------------------------------- replay *)

let test_byte_identical_replay () =
  let sock = temp_sock "replay" in
  let server =
    start (Service.Server.config ~jobs:2 ~socket_path:sock ())
  in
  let r1 = request sock route_qft4 in
  Alcotest.(check bool) "cold route ok" true (reply_ok r1);
  let r2 = request sock route_qft4 in
  Alcotest.(check string) "cache hit replays byte-identically" r1 r2;
  (* the same circuit as inline QASM text — different formatting, same
     fingerprint, same bytes back (source stays the cold record's) *)
  let qasm =
    match Workloads.Suite.find "qft_4" with
    | None -> Alcotest.fail "qft_4 missing from the suite"
    | Some e ->
      "// reformatted on purpose\n\n"
      ^ Qasm.Printer.to_string (Lazy.force e.circuit)
  in
  let inline_req =
    Json.to_string ~indent:0
      (Json.Obj
         [
           ("op", Json.String "route");
           ("qasm", Json.String qasm);
           ("restarts", Json.Int 2);
         ])
  in
  let r3 = request sock inline_req in
  Alcotest.(check string) "inline QASM hits the same entry" r1 r3;
  let stats = request sock {|{"op":"stats"}|} in
  Alcotest.(check int) "one route computed" 1
    (counter [ "service"; "routes_computed" ] stats);
  Alcotest.(check int) "two cache hits" 2 (counter [ "cache"; "hits" ] stats);
  (* a batch mixing a warm and a cold item keeps request order *)
  let batch =
    request sock
      {|{"op":"batch","requests":[{"bench":"qft_4","restarts":2},{"bench":"ghz_8","restarts":2}]}|}
  in
  Alcotest.(check bool) "batch ok" true (reply_ok batch);
  (match Json.member "results" (parse_reply batch) with
  | Some (Json.List [ a; b ]) ->
    let source item =
      Option.bind (Json.member "record" item) (Json.member "source")
    in
    Alcotest.(check bool) "first result is the qft_4 record" true
      (source a = Some (Json.String "qft_4"));
    Alcotest.(check bool) "second result is the ghz_8 record" true
      (source b = Some (Json.String "ghz_8"))
  | _ -> Alcotest.failf "batch reply shape: %S" batch);
  (* ids echo on both ok and error replies *)
  let pinged = request sock {|{"op":"ping","id":42}|} in
  Alcotest.(check string) "id echoes" {|{"ok":true,"op":"ping","id":42,"reply":"pong"}|}
    pinged;
  let bad = request sock {|{"op":"frobnicate","id":"x7"}|} in
  Alcotest.(check bool) "unknown op rejected" false (reply_ok bad);
  Alcotest.(check string) "unknown_op code" "unknown_op" (reply_code bad);
  (match Json.member "id" (parse_reply bad) with
  | Some (Json.String "x7") -> ()
  | _ -> Alcotest.failf "error reply lost the id: %S" bad);
  let svc = shutdown_and_join sock server in
  (* qft_4 cold + the batch's ghz_8; everything else was a hit *)
  Alcotest.(check int) "routes_computed in final counters" 2
    svc.Codar.Stats.routes_computed

(* ------------------------------------------------------------ coalescing *)

let test_coalescing_single_computation () =
  let sock = temp_sock "coalesce" in
  let clients = 4 in
  (* gate: routing blocks until the test has seen every duplicate request
     registered, so "all but one coalesce" is deterministic, not a race *)
  let gate_m = Mutex.create () and gate_c = Condition.create () in
  let gate_open = ref false in
  let started = ref 0 in
  let on_route_start _fp =
    Mutex.lock gate_m;
    incr started;
    while not !gate_open do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m
  in
  let server =
    start
      (Service.Server.config ~jobs:1 ~on_route_start ~socket_path:sock ())
  in
  let replies = Array.make clients "" in
  let threads =
    Array.init clients (fun i ->
        Thread.create (fun () -> replies.(i) <- request sock route_qft4) ())
  in
  (* stats requests bypass the routing queue, so we can poll the live
     coalescing counter while the one routing job is held at the gate *)
  let rec wait_coalesced () =
    let stats = request sock {|{"op":"stats"}|} in
    if counter [ "service"; "coalesced" ] stats < clients - 1 then begin
      Thread.yield ();
      wait_coalesced ()
    end
  in
  wait_coalesced ();
  Mutex.lock gate_m;
  gate_open := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  Array.iter Thread.join threads;
  Array.iter
    (fun r ->
      Alcotest.(check string) "every duplicate got the same bytes"
        replies.(0) r;
      Alcotest.(check bool) "and it is an ok reply" true (reply_ok r))
    replies;
  let stats = request sock {|{"op":"stats"}|} in
  Alcotest.(check int) "exactly one computation" 1
    (counter [ "service"; "routes_computed" ] stats);
  Alcotest.(check int) "exactly one insertion" 1
    (counter [ "cache"; "insertions" ] stats);
  Alcotest.(check int) "the rest coalesced" (clients - 1)
    (counter [ "service"; "coalesced" ] stats);
  let svc = shutdown_and_join sock server in
  Alcotest.(check int) "route ran once" 1 !started;
  Alcotest.(check int) "final coalesced counter" (clients - 1)
    svc.Codar.Stats.coalesced

(* -------------------------------------------------- graceful degradation *)

let test_survives_hostile_clients () =
  let sock = temp_sock "hostile" in
  let server =
    start
      (Service.Server.config ~jobs:1 ~max_request_bytes:256
         ~socket_path:sock ())
  in
  (* one connection, a parade of bad frames, then a good one: the
     connection (and daemon) must survive everything answerable *)
  Service.Client.with_connection sock (fun t ->
      let req frame = Service.Client.request t frame in
      Alcotest.(check string) "garbage is a parse error" "parse"
        (reply_code (req "this is not json"));
      Alcotest.(check string) "non-object frame" "bad_request"
        (reply_code (req "[1,2,3]"));
      Alcotest.(check string) "unknown key" "bad_request"
        (reply_code (req {|{"op":"route","bench":"qft_4","bogus":1}|}));
      Alcotest.(check string) "unknown bench" "bad_request"
        (reply_code (req {|{"op":"route","bench":"no_such_bench"}|}));
      Alcotest.(check string) "broken inline QASM" "bad_request"
        (reply_code (req {|{"op":"route","qasm":"qreg nonsense["}|}));
      Alcotest.(check string) "circuit too big for device" "bad_request"
        (reply_code (req {|{"op":"route","bench":"qft_8","arch":"q5"}|}));
      Alcotest.(check bool) "same connection still serves" true
        (reply_ok (req {|{"op":"ping"}|})));
  (* an oversized frame is answered, then the connection is dropped *)
  let t = Service.Client.connect sock in
  Service.Client.send_line t (String.make 1024 'x');
  (match Service.Client.recv_line t with
  | Some reply ->
    Alcotest.(check string) "oversized code" "oversized" (reply_code reply)
  | None -> Alcotest.fail "no reply to the oversized frame");
  Alcotest.(check bool) "connection dropped after oversized frame" true
    (Service.Client.recv_line t = None);
  Service.Client.close t;
  (* a client that vanishes mid-frame *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let partial = Bytes.of_string {|{"op":|} in
  ignore (Unix.write fd partial 0 (Bytes.length partial));
  Unix.close fd;
  (* daemon still alive after all of it *)
  Alcotest.(check bool) "daemon survives the parade" true
    (reply_ok (request sock {|{"op":"ping"}|}));
  ignore (shutdown_and_join sock server)

(* Deeper hostility: binary junk, wrong-typed fields, pathologically
   nested JSON. Every line must come back as a typed error on a live
   connection — in particular the deep-nesting frames, which would blow
   the parser's stack (and silently kill the connection) without the
   depth cap in Report.Json. *)
let test_hostile_frame_battery () =
  let sock = temp_sock "battery" in
  let server = start (Service.Server.config ~jobs:1 ~socket_path:sock ()) in
  Service.Client.with_connection sock (fun t ->
      let req frame = Service.Client.request t frame in
      let check_code name code frame =
        Alcotest.(check string) name code (reply_code (req frame))
      in
      (* an entirely blank line is a documented keep-alive (no reply),
         so the battery starts at whitespace-with-content *)
      check_code "whitespace line" "parse" "   ";
      check_code "binary junk" "parse" "\x01\xfe\xff\x00\x7f\x1b[31m";
      check_code "truncated object" "parse" {|{"op":"ping"|};
      check_code "truncated string" "parse" {|{"op":"pi|};
      check_code "trailing garbage" "parse" {|{"op":"ping"} extra|};
      check_code "two frames in one line" "parse" {|{"op":"ping"}{"op":"ping"}|};
      check_code "op is a number" "bad_request" {|{"op":123}|};
      check_code "op is null" "bad_request" {|{"op":null}|};
      check_code "missing op" "bad_request" {|{"id":1}|};
      check_code "wrong-typed option" "bad_request"
        {|{"op":"route","bench":"qft_4","restarts":"three"}|};
      check_code "wrong-typed source" "bad_request" {|{"op":"route","bench":123}|};
      check_code "batch items wrong type" "bad_request"
        {|{"op":"batch","items":[1,2]}|};
      (* the objective/metric vocabulary is validated before any routing *)
      check_code "unknown objective" "bad_request"
        {|{"op":"route","bench":"qft_4","objective":"bogus"}|};
      check_code "objective is a number" "bad_request"
        {|{"op":"route","bench":"qft_4","objective":5}|};
      check_code "unknown metric" "bad_request"
        {|{"op":"route","bench":"qft_4","router":"portfolio","metric":"speed"}|};
      check_code "metric on a non-portfolio router" "bad_request"
        {|{"op":"route","bench":"qft_4","router":"codar","metric":"esp"}|};
      check_code "esp metric without calibration" "bad_request"
        {|{"op":"route","bench":"qft_4","router":"portfolio","durations":"uniform","metric":"esp"}|};
      check_code "objective list on plain codar" "bad_request"
        {|{"op":"route","bench":"qft_4","router":"codar","objective":"makespan,t2"}|};
      (* ~4000 levels of nesting: a typed parse error, not a stack
         overflow or a dead connection *)
      let deep_list =
        {|{"op":|} ^ String.make 4000 '[' ^ String.make 4000 ']' ^ "}"
      in
      check_code "deeply nested list" "parse" deep_list;
      let deep_obj =
        let b = Buffer.create 40_000 in
        Buffer.add_string b {|{"op":|};
        for _ = 1 to 4000 do
          Buffer.add_string b {|{"k":|}
        done;
        Buffer.add_string b "0";
        for _ = 1 to 4000 do
          Buffer.add_char b '}'
        done;
        Buffer.add_char b '}';
        Buffer.contents b
      in
      check_code "deeply nested object" "parse" deep_obj;
      (* the same connection still serves after the whole battery *)
      Alcotest.(check bool) "connection survives" true
        (reply_ok (req {|{"op":"ping"}|})));
  Alcotest.(check bool) "daemon survives" true
    (reply_ok (request sock {|{"op":"ping"}|}));
  ignore (shutdown_and_join sock server)

(* parse_frame itself must be total: any byte string yields Ok or a
   typed error, never an exception. *)
let prop_parse_frame_total =
  QCheck.Test.make ~count:500 ~name:"parse_frame never raises"
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      match Service.Protocol.parse_frame s with
      | Ok _ | Error _ -> true)

(* and the same for near-miss JSON: random mutations of a valid frame *)
let prop_parse_frame_mutations =
  let base = {|{"op":"route","bench":"qft_4","arch":"tokyo","restarts":2}|} in
  QCheck.Test.make ~count:500 ~name:"parse_frame survives mutations"
    QCheck.(pair (int_bound (String.length base - 1)) (int_bound 255))
    (fun (pos, byte) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated pos (Char.chr byte);
      match Service.Protocol.parse_frame (Bytes.to_string mutated) with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------ persistence *)

let test_cache_survives_restart () =
  let sock = temp_sock "persist" in
  let cache_file =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "codar-persist-%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove cache_file with Sys_error _ -> ())
    (fun () ->
      let cfg () =
        Service.Server.config ~jobs:1 ~cache_file ~socket_path:sock ()
      in
      let server = start (cfg ()) in
      let cold = request sock route_qft4 in
      Alcotest.(check bool) "cold route ok" true (reply_ok cold);
      ignore (shutdown_and_join sock server);
      Alcotest.(check bool) "cache file written on shutdown" true
        (Sys.file_exists cache_file);
      (* a fresh daemon, same file: the first route must already hit *)
      let server = start (cfg ()) in
      let warm = request sock route_qft4 in
      Alcotest.(check string)
        "reply is byte-identical across daemon restarts" cold warm;
      let stats = request sock {|{"op":"stats"}|} in
      Alcotest.(check int) "no recomputation" 0
        (counter [ "service"; "routes_computed" ] stats);
      Alcotest.(check int) "served from the loaded cache" 1
        (counter [ "cache"; "hits" ] stats);
      ignore (shutdown_and_join sock server))

(* ------------------------------------------------- evented loop details *)

(* The select-timeout computation is pure; pin that the nearest armed
   deadline bounds the sleep (no ticker thread to paper over a miss). *)
let test_select_timeout () =
  let st = Service.Evented.select_timeout in
  Alcotest.(check (float 1e-9))
    "no deadlines: sleep until an fd event" (-1.)
    (st ~now:100. []);
  Alcotest.(check (float 1e-9))
    "nearest deadline bounds the sleep" 0.25
    (st ~now:100. [ 100.75; 100.25; 101. ]);
  Alcotest.(check (float 1e-9))
    "expired deadline: poll immediately" 0.
    (st ~now:100. [ 99.5; 100.75 ]);
  Alcotest.(check (float 1e-9))
    "exact deadline: poll immediately" 0.
    (st ~now:100. [ 100. ])

(* Regression: a read chunk carrying a complete frame *and* the start of
   the next one must keep the mid-frame deadline armed for the partial
   tail. The loop used to clear the clock after extracting complete
   lines, so a pipelining client could hold a connection (and its
   buffers) forever with an unfinished trailer. *)
let test_pipelined_partial_frame_deadline () =
  let sock = temp_sock "partial" in
  let server =
    start
      (Service.Server.config ~jobs:1 ~timeout_ms:200 ~socket_path:sock ())
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let payload = "{\"op\":\"ping\"}\n{\"op\":\"pi" in
  ignore (Unix.write_substring fd payload 0 (String.length payload));
  let ic = Unix.in_channel_of_descr fd in
  Alcotest.(check bool) "complete frame answered" true
    (reply_ok (input_line ic));
  (* the partial trailer must expire, not hang forever *)
  Alcotest.(check string) "partial trailer expires" "deadline_exceeded"
    (reply_code (input_line ic));
  Alcotest.(check bool) "connection dropped after the abandoned frame" true
    (match input_line ic with
    | _ -> false
    | exception End_of_file -> true);
  Unix.close fd;
  Alcotest.(check bool) "daemon survives" true
    (reply_ok (request sock {|{"op":"ping"}|}));
  ignore (shutdown_and_join sock server)

(* At the connection cap the daemon stops polling its listen fd —
   further connections wait in the kernel backlog instead of pushing
   select past FD_SETSIZE — and accepts again the moment a slot frees. *)
let test_connection_cap () =
  let sock = temp_sock "cap" in
  let server =
    start
      (Service.Server.config ~jobs:1 ~max_connections:2 ~socket_path:sock ())
  in
  let a = Service.Client.connect sock in
  let b = Service.Client.connect sock in
  Alcotest.(check bool) "first capped connection serves" true
    (reply_ok (Service.Client.request a {|{"op":"ping"}|}));
  Alcotest.(check bool) "second capped connection serves" true
    (reply_ok (Service.Client.request b {|{"op":"ping"}|}));
  (* a third connection lands in the backlog: connect succeeds, but
     nothing answers while both slots are held *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ping = "{\"op\":\"ping\"}\n" in
  ignore (Unix.write_substring fd ping 0 (String.length ping));
  (match Unix.select [ fd ] [] [] 0.3 with
  | [], _, _ -> ()
  | _ -> Alcotest.fail "over-cap connection was served while at the cap");
  Service.Client.close a;
  let ic = Unix.in_channel_of_descr fd in
  Alcotest.(check bool) "queued connection served once a slot freed" true
    (reply_ok (input_line ic));
  let stats = Service.Client.request b {|{"op":"stats"}|} in
  Alcotest.(check int) "peak never exceeded the cap" 2
    (counter [ "service"; "conns_peak" ] stats);
  Alcotest.(check string) "shutdown acknowledged"
    {|{"ok":true,"op":"shutdown"}|}
    (Service.Client.request b {|{"op":"shutdown"}|});
  Unix.close fd;
  Service.Client.close b;
  let svc = join server in
  Alcotest.(check int) "final peak stayed at the cap" 2
    svc.Codar.Stats.conns_peak

let test_connection_observability () =
  let sock = temp_sock "obs" in
  let server = start (Service.Server.config ~jobs:1 ~socket_path:sock ()) in
  Service.Client.with_connection sock (fun a ->
      Service.Client.with_connection sock (fun b ->
          Alcotest.(check bool) "first connection serves" true
            (reply_ok (Service.Client.request a {|{"op":"ping"}|}));
          let stats = Service.Client.request b {|{"op":"stats"}|} in
          Alcotest.(check int) "two connections accepted" 2
            (counter [ "service"; "connections" ] stats);
          Alcotest.(check int) "both still active" 2
            (counter [ "service"; "conns_active" ] stats);
          Alcotest.(check int) "peak is two" 2
            (counter [ "service"; "conns_peak" ] stats);
          Alcotest.(check bool) "request bytes counted" true
            (counter [ "service"; "bytes_in" ] stats > 0);
          Alcotest.(check bool) "reply bytes counted" true
            (counter [ "service"; "bytes_out" ] stats > 0);
          Alcotest.(check int) "no stalls from healthy clients" 0
            (counter [ "service"; "wb_stalls" ] stats)));
  let svc = shutdown_and_join sock server in
  Alcotest.(check int) "active connections drain to zero" 0
    svc.Codar.Stats.conns_active;
  Alcotest.(check bool) "final peak at least two" true
    (svc.Codar.Stats.conns_peak >= 2)

(* A deliberately slow-reading client: thousands of pipelined warm
   requests, no reads until every request is written. Its reply bytes
   back up past the (tiny, for the test) high-watermark, so the daemon
   must stop reading it — and count the stall — while other connections
   stay fully served; once the slow reader finally drains, every one of
   its replies must still be complete and byte-identical. *)
let test_backpressure_slow_reader () =
  let sock = temp_sock "backpressure" in
  let server =
    start
      (Service.Server.config ~jobs:1 ~write_watermark_bytes:2048
         ~timeout_ms:250 ~socket_path:sock ())
  in
  let reference = request sock route_qft4 in
  Alcotest.(check bool) "warm reference ok" true (reply_ok reference);
  (* ~90 KB of requests (safely under the kernel socket buffers, so the
     un-read pipeline cannot deadlock the test's own blocking writes)
     producing far more reply bytes than the kernel will buffer *)
  let n = 2000 in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let payload =
    String.concat "" (List.init n (fun _ -> route_qft4 ^ "\n"))
    (* plus a partial trailer: its read deadline must pause while the
       server itself has stalled this connection at the watermark — a
       stall is the server's refusal to read, not a client offence *)
    ^ {|{"op":"pi|}
  in
  let len = String.length payload in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd payload !pos (len - !pos)
  done;
  (* the slow reader's backlog must not block anyone else *)
  Alcotest.(check bool) "other connections still served" true
    (reply_ok (request sock {|{"op":"ping"}|}));
  (* nothing is being read from [fd], and the replies far exceed the
     kernel socket buffer, so the watermark must trip; wait for it
     before draining (the drain itself races the stall otherwise) *)
  let rec wait_stall () =
    let stats = request sock {|{"op":"stats"}|} in
    if counter [ "service"; "wb_stalls" ] stats < 1 then begin
      Thread.yield ();
      wait_stall ()
    end
  in
  wait_stall ();
  (* drain: all n replies, each complete and byte-identical *)
  let ic = Unix.in_channel_of_descr fd in
  let all_identical = ref true in
  for _ = 1 to n do
    let line = input_line ic in
    if not (String.equal line reference) then all_identical := false
  done;
  Alcotest.(check bool) "every backed-up reply byte-identical" true
    !all_identical;
  (* only once the stalls have lifted does the trailer's clock run; it
     then expires as usual — after every buffered reply was delivered *)
  Alcotest.(check string) "partial trailer expires after the drain"
    "deadline_exceeded"
    (reply_code (input_line ic));
  let stats = request sock {|{"op":"stats"}|} in
  Alcotest.(check bool) "stall episodes counted" true
    (counter [ "service"; "wb_stalls" ] stats >= 1);
  Alcotest.(check int) "replies still served from one computation" 1
    (counter [ "service"; "routes_computed" ] stats);
  Unix.close fd;
  let svc = shutdown_and_join sock server in
  Alcotest.(check bool) "final stall counter kept" true
    (svc.Codar.Stats.wb_stalls >= 1)

let test_request_many_pipelining () =
  let sock = temp_sock "pipeline" in
  let server = start (Service.Server.config ~jobs:1 ~socket_path:sock ()) in
  let warm = request sock route_qft4 in
  Service.Client.with_connection sock (fun t ->
      let replies =
        Service.Client.request_many t
          [ {|{"op":"ping","id":1}|}; route_qft4; {|{"op":"ping","id":2}|} ]
      in
      match replies with
      | [ p1; r; p2 ] ->
        Alcotest.(check string) "first reply in order"
          {|{"ok":true,"op":"ping","id":1,"reply":"pong"}|} p1;
        Alcotest.(check string) "route reply identical to the one-shot path"
          warm r;
        Alcotest.(check string) "last reply in order"
          {|{"ok":true,"op":"ping","id":2,"reply":"pong"}|} p2
      | replies ->
        Alcotest.failf "expected 3 replies, got %d" (List.length replies));
  (* a pipeline big enough to force interleaved write/read *)
  Service.Client.with_connection sock (fun t ->
      let n = 500 in
      let replies =
        Service.Client.request_many t (List.init n (fun _ -> route_qft4))
      in
      Alcotest.(check int) "one reply per pipelined request" n
        (List.length replies);
      Alcotest.(check bool) "all byte-identical" true
        (List.for_all (String.equal warm) replies));
  ignore (shutdown_and_join sock server)

(* The threaded implementation stays selectable — and frame-for-frame
   interchangeable with the evented default. *)
let test_threaded_io_model () =
  let sock = temp_sock "threaded" in
  let server =
    start
      (Service.Server.config ~jobs:2 ~io_model:Service.Config.Threaded
         ~socket_path:sock ())
  in
  let cold = request sock route_qft4 in
  Alcotest.(check bool) "threaded cold route ok" true (reply_ok cold);
  let hit = request sock route_qft4 in
  Alcotest.(check string) "threaded replay byte-identical" cold hit;
  let stats = request sock {|{"op":"stats"}|} in
  Alcotest.(check int) "threaded counts connections" 3
    (counter [ "service"; "connections" ] stats);
  Alcotest.(check bool) "threaded counts bytes" true
    (counter [ "service"; "bytes_out" ] stats > 0);
  ignore (shutdown_and_join sock server);
  (* same request against an evented daemon: identical frame bytes *)
  let sock2 = temp_sock "threaded-x" in
  let server2 =
    start
      (Service.Server.config ~jobs:2 ~io_model:Service.Config.Evented
         ~socket_path:sock2 ())
  in
  let evented_cold = request sock2 route_qft4 in
  (* identical frames up to the record's wall-clock field — the routing
     result and serialisation agree; only the measured time differs *)
  let before_wall s =
    let pat = {|"wall_s":|} in
    let plen = String.length pat and slen = String.length s in
    let rec find i =
      if i + plen > slen then s
      else if String.equal (String.sub s i plen) pat then String.sub s 0 i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check string) "io models agree byte-for-byte (modulo wall_s)"
    (before_wall cold) (before_wall evented_cold);
  ignore (shutdown_and_join sock2 server2)

let () =
  Alcotest.run "service"
    [
      ( "daemon",
        [
          Alcotest.test_case "byte-identical replay" `Quick
            test_byte_identical_replay;
          Alcotest.test_case "coalescing" `Quick
            test_coalescing_single_computation;
          Alcotest.test_case "hostile clients" `Quick
            test_survives_hostile_clients;
          Alcotest.test_case "hostile frame battery" `Quick
            test_hostile_frame_battery;
          Alcotest.test_case "cache survives restart" `Quick
            test_cache_survives_restart;
        ] );
      ( "evented",
        [
          Alcotest.test_case "select timeout" `Quick test_select_timeout;
          Alcotest.test_case "pipelined partial-frame deadline" `Quick
            test_pipelined_partial_frame_deadline;
          Alcotest.test_case "connection cap" `Quick test_connection_cap;
          Alcotest.test_case "connection observability" `Quick
            test_connection_observability;
          Alcotest.test_case "backpressure slow reader" `Quick
            test_backpressure_slow_reader;
          Alcotest.test_case "request_many pipelining" `Quick
            test_request_many_pipelining;
          Alcotest.test_case "threaded io-model" `Quick
            test_threaded_io_model;
        ] );
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_parse_frame_total;
          QCheck_alcotest.to_alcotest prop_parse_frame_mutations;
        ] );
    ]
