(* Tests for the [sim] library: state vectors, the noise model and the
   routed-equivalence checker. *)

let sc = Arch.Durations.superconducting

(* ------------------------------------------------------------ statevector *)

let complex_close a b = Complex.norm (Complex.sub a b) < 1e-9

let test_init () =
  let sv = Sim.Statevector.init 3 in
  Alcotest.(check bool) "amp |000> = 1" true
    (complex_close (Sim.Statevector.amplitude sv 0) Complex.one);
  Alcotest.(check (float 1e-9)) "norm" 1. (Sim.Statevector.norm sv);
  Alcotest.(check bool) "too wide rejected" true
    (try
       ignore (Sim.Statevector.init 25);
       false
     with Invalid_argument _ -> true)

let test_x_and_h () =
  let sv = Sim.Statevector.init 2 in
  Sim.Statevector.apply sv (Qc.Gate.x 0);
  Alcotest.(check bool) "X|00> = |01>" true
    (complex_close (Sim.Statevector.amplitude sv 1) Complex.one);
  Sim.Statevector.apply sv (Qc.Gate.x 0);
  Sim.Statevector.apply sv (Qc.Gate.h 0);
  let r = 1. /. sqrt 2. in
  Alcotest.(check bool) "H superposition" true
    (complex_close (Sim.Statevector.amplitude sv 0) { Complex.re = r; im = 0. }
    && complex_close (Sim.Statevector.amplitude sv 1) { Complex.re = r; im = 0. })

let test_bell () =
  let c = Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ] in
  let sv = Sim.Statevector.run c in
  let r = 1. /. sqrt 2. in
  Alcotest.(check bool) "bell amplitudes" true
    (complex_close (Sim.Statevector.amplitude sv 0) { Complex.re = r; im = 0. }
    && complex_close (Sim.Statevector.amplitude sv 3) { Complex.re = r; im = 0. }
    && complex_close (Sim.Statevector.amplitude sv 1) Complex.zero
    && complex_close (Sim.Statevector.amplitude sv 2) Complex.zero);
  Alcotest.(check (float 1e-9)) "P(q1 = 1)" 0.5
    (Sim.Statevector.measure_probability sv 1)

let test_swap_moves_amplitude () =
  let sv = Sim.Statevector.init 2 in
  Sim.Statevector.apply sv (Qc.Gate.x 0);
  Sim.Statevector.apply sv (Qc.Gate.swap 0 1);
  Alcotest.(check bool) "|01> -> |10>" true
    (complex_close (Sim.Statevector.amplitude sv 2) Complex.one)

let test_fidelity_and_inner () =
  let a = Sim.Statevector.init 2 in
  let b = Sim.Statevector.init 2 in
  Alcotest.(check (float 1e-9)) "identical" 1. (Sim.Statevector.fidelity a b);
  Sim.Statevector.apply b (Qc.Gate.x 0);
  Alcotest.(check (float 1e-9)) "orthogonal" 0. (Sim.Statevector.fidelity a b);
  (* global phase doesn't change fidelity *)
  let c = Sim.Statevector.init 2 in
  Sim.Statevector.apply c (Qc.Gate.z 0);
  Alcotest.(check (float 1e-9)) "phase invariant" 1.
    (Sim.Statevector.fidelity a c)

let test_measure_rejected () =
  let sv = Sim.Statevector.init 1 in
  Alcotest.(check bool) "measure rejected" true
    (try
       Sim.Statevector.apply sv (Qc.Gate.measure 0 0);
       false
     with Invalid_argument _ -> true)

let test_random_state_normalised () =
  let rng = Random.State.make [| 7 |] in
  let sv = Sim.Statevector.random_state rng 4 in
  Alcotest.(check (float 1e-9)) "norm 1" 1. (Sim.Statevector.norm sv)

let test_embed () =
  let sv = Sim.Statevector.init 2 in
  Sim.Statevector.apply sv (Qc.Gate.x 0);
  Sim.Statevector.apply sv (Qc.Gate.x 1);
  (* logical |11> placed at physical qubits 1 and 3 of a 4-qubit register *)
  let wide =
    Sim.Statevector.embed sv ~n_physical:4 ~place:(fun l -> (2 * l) + 1)
  in
  Alcotest.(check bool) "|1010> set" true
    (complex_close (Sim.Statevector.amplitude wide 0b1010) Complex.one)

let prop_unitarity_preserves_norm =
  QCheck.Test.make ~count:100 ~name:"circuits preserve the norm"
    QCheck.(small_list (pair (int_bound 4) (int_bound 2)))
    (fun choices ->
      let sv = Sim.Statevector.init 3 in
      List.iter
        (fun (g, q) ->
          let q2 = (q + 1) mod 3 in
          let gate =
            match g with
            | 0 -> Qc.Gate.h q
            | 1 -> Qc.Gate.t q
            | 2 -> Qc.Gate.cx q q2
            | 3 -> Qc.Gate.swap q q2
            | _ -> Qc.Gate.rz 0.3 q
          in
          Sim.Statevector.apply sv gate)
        choices;
      Float.abs (Sim.Statevector.norm sv -. 1.) < 1e-9)

(* ------------------------------------------------------------------ noise *)

let routed_on_line circuit =
  let maqam = Arch.Maqam.make ~coupling:(Arch.Devices.linear 3) ~durations:sc in
  let initial =
    Arch.Layout.identity ~n_logical:(Qc.Circuit.n_qubits circuit) ~n_physical:3
  in
  (maqam, Codar.Remapper.run ~maqam ~initial circuit)

let test_noise_validation () =
  Alcotest.(check bool) "t2 > 2 t1 rejected" true
    (try
       Sim.Noise.validate { Sim.Noise.t1 = 1.; t2 = 3. };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative rejected" true
    (try
       Sim.Noise.validate { Sim.Noise.t1 = -1.; t2 = 1. };
       false
     with Invalid_argument _ -> true);
  Sim.Noise.validate (Sim.Noise.dephasing_dominant ~t2:10.);
  Sim.Noise.validate (Sim.Noise.damping_dominant ~t1:10.)

let test_noiseless_limit () =
  (* with huge time constants the noisy run equals the ideal one *)
  let circuit = Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ] in
  let maqam, r = routed_on_line circuit in
  let f =
    Sim.Noise.fidelity ~trajectories:5
      { Sim.Noise.t1 = 1e12; t2 = 1e12 }
      ~maqam ~original:circuit r
  in
  Alcotest.(check (float 1e-6)) "fidelity 1" 1. f

let test_dephasing_spares_basis_states () =
  (* a computational-basis circuit (X only) is immune to pure dephasing *)
  let circuit = Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.x 0; Qc.Gate.x 1 ] in
  let maqam, r = routed_on_line circuit in
  let f =
    Sim.Noise.fidelity ~trajectories:10
      (Sim.Noise.dephasing_dominant ~t2:2.)
      ~maqam ~original:circuit r
  in
  Alcotest.(check (float 1e-6)) "basis states immune" 1. f

let test_dephasing_hurts_superpositions () =
  let circuit = Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ] in
  let maqam, r = routed_on_line circuit in
  let f =
    Sim.Noise.fidelity ~trajectories:40
      (Sim.Noise.dephasing_dominant ~t2:3.)
      ~maqam ~original:circuit r
  in
  Alcotest.(check bool) "fidelity clearly below 1" true (f < 0.95)

let test_damping_hurts_excited_states () =
  let circuit = Qc.Circuit.make ~n_qubits:1 [ Qc.Gate.x 0 ] in
  let maqam =
    Arch.Maqam.make ~coupling:(Arch.Devices.linear 1) ~durations:sc
  in
  let initial = Arch.Layout.identity ~n_logical:1 ~n_physical:1 in
  let r = Codar.Remapper.run ~maqam ~initial circuit in
  let f =
    Sim.Noise.fidelity ~trajectories:60
      (Sim.Noise.damping_dominant ~t1:2.)
      ~maqam ~original:circuit r
  in
  Alcotest.(check bool) "|1> decays" true (f < 0.9)

let test_shorter_schedule_higher_fidelity () =
  (* the same physical gates, once packed and once artificially stretched:
     the longer schedule must lose more fidelity (Fig. 9's mechanism) *)
  let circuit =
    Qc.Circuit.make ~n_qubits:3
      [ Qc.Gate.h 0; Qc.Gate.h 1; Qc.Gate.h 2; Qc.Gate.cx 0 1 ]
  in
  let maqam, r = routed_on_line circuit in
  let stretched =
    {
      r with
      Schedule.Routed.events =
        List.map
          (fun e -> { e with Schedule.Routed.start = e.Schedule.Routed.start * 20 })
          r.Schedule.Routed.events;
      makespan = r.Schedule.Routed.makespan * 20;
    }
  in
  let model = Sim.Noise.dephasing_dominant ~t2:100. in
  let f_packed =
    Sim.Noise.fidelity ~trajectories:40 model ~maqam ~original:circuit r
  in
  let f_stretched =
    Sim.Noise.fidelity ~trajectories:40 model ~maqam ~original:circuit
      stretched
  in
  Alcotest.(check bool)
    (Fmt.str "packed %.3f > stretched %.3f" f_packed f_stretched)
    true (f_packed > f_stretched)

(* ---------------------------------------------------------------- density *)

let test_density_pure_state () =
  let d = Sim.Density.init 2 in
  Alcotest.(check (float 1e-12)) "trace 1" 1. (Sim.Density.trace d).Complex.re;
  Sim.Density.apply_gate d (Qc.Gate.h 0);
  Sim.Density.apply_gate d (Qc.Gate.cx 0 1);
  let bell =
    Sim.Statevector.run
      (Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ])
  in
  Alcotest.(check (float 1e-9)) "pure evolution matches statevector" 1.
    (Sim.Density.fidelity_to_pure d bell);
  Alcotest.(check (float 1e-12)) "trace preserved" 1.
    (Sim.Density.trace d).Complex.re

let test_density_channel_trace () =
  let d = Sim.Density.of_statevector (Sim.Statevector.run
    (Qc.Circuit.make ~n_qubits:1 [ Qc.Gate.h 0 ])) in
  let k0, k1 = Sim.Noise.kraus_dephasing ~p:0.3 in
  Sim.Density.apply_channel1 d [ k0; k1 ] 0;
  Alcotest.(check (float 1e-12)) "channel preserves trace" 1.
    (Sim.Density.trace d).Complex.re;
  (* full dephasing kills off-diagonal coherence: fidelity to |+> drops to
     1/2 as p -> 1/2 *)
  let d2 = Sim.Density.of_statevector (Sim.Statevector.run
    (Qc.Circuit.make ~n_qubits:1 [ Qc.Gate.h 0 ])) in
  let k0, k1 = Sim.Noise.kraus_dephasing ~p:0.5 in
  Sim.Density.apply_channel1 d2 [ k0; k1 ] 0;
  let plus = Sim.Statevector.run (Qc.Circuit.make ~n_qubits:1 [ Qc.Gate.h 0 ]) in
  Alcotest.(check (float 1e-9)) "fully dephased |+> has fidelity 1/2" 0.5
    (Sim.Density.fidelity_to_pure d2 plus)

let test_density_damping_analytic () =
  (* |1> under amplitude damping: survival probability exp(-dt/t1) *)
  let d = Sim.Density.of_statevector (Sim.Statevector.run
    (Qc.Circuit.make ~n_qubits:1 [ Qc.Gate.x 0 ])) in
  let model = Sim.Noise.damping_dominant ~t1:10. in
  Sim.Density.decohere model d ~qubit:0 ~dt:5.;
  let one = Sim.Statevector.run (Qc.Circuit.make ~n_qubits:1 [ Qc.Gate.x 0 ]) in
  Alcotest.(check (float 1e-9)) "exp(-1/2) survival" (exp (-0.5))
    (Sim.Density.fidelity_to_pure d one)

let test_trajectory_matches_density () =
  (* the Monte-Carlo sampler must agree with the exact channel evolution *)
  let circuit =
    Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1; Qc.Gate.t 1 ]
  in
  let maqam =
    Arch.Maqam.make ~coupling:(Arch.Devices.linear 2)
      ~durations:Arch.Durations.superconducting
  in
  let initial = Arch.Layout.identity ~n_logical:2 ~n_physical:2 in
  let r = Codar.Remapper.run ~maqam ~initial circuit in
  List.iter
    (fun (name, model) ->
      let exact = Sim.Density.fidelity model ~maqam ~original:circuit r in
      let sampled =
        Sim.Noise.fidelity ~trajectories:4000 ~seed:12 model ~maqam
          ~original:circuit r
      in
      Alcotest.(check bool)
        (Fmt.str "%s: sampled %.4f within 0.04 of exact %.4f" name sampled
           exact)
        true
        (Float.abs (sampled -. exact) < 0.04))
    [
      ("dephasing", Sim.Noise.dephasing_dominant ~t2:20.);
      ("damping", Sim.Noise.damping_dominant ~t1:20.);
      ("mixed", { Sim.Noise.t1 = 30.; t2 = 25. });
    ]

let test_gate_error_sampler_matches_density () =
  let circuit =
    Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ]
  in
  let maqam =
    Arch.Maqam.make ~coupling:(Arch.Devices.linear 2)
      ~durations:Arch.Durations.superconducting
  in
  let initial = Arch.Layout.identity ~n_logical:2 ~n_physical:2 in
  let r = Codar.Remapper.run ~maqam ~initial circuit in
  let gate_error = { Sim.Noise.p1 = 0.02; p2 = 0.05 } in
  let model = { Sim.Noise.t1 = infinity; t2 = 1e12 } in
  let exact =
    Sim.Density.fidelity ~gate_error model ~maqam ~original:circuit r
  in
  let sampled =
    Sim.Noise.fidelity ~trajectories:4000 ~seed:5 ~gate_error model ~maqam
      ~original:circuit r
  in
  Alcotest.(check bool)
    (Fmt.str "sampled %.4f within 0.04 of exact %.4f" sampled exact)
    true
    (Float.abs (sampled -. exact) < 0.04);
  (* more gate error means less fidelity *)
  let worse =
    Sim.Density.fidelity
      ~gate_error:{ Sim.Noise.p1 = 0.1; p2 = 0.2 }
      model ~maqam ~original:circuit r
  in
  Alcotest.(check bool) "monotone in error rate" true (worse < exact)

(* ------------------------------------------------------------ reliability *)

let test_reliability_analytic () =
  (* hand-checkable schedule: H at [0,1), CX at [1,3) on a 2-qubit line *)
  let circuit = Qc.Circuit.make ~n_qubits:2 [ Qc.Gate.h 0; Qc.Gate.cx 0 1 ] in
  let events, makespan =
    Schedule.Asap.schedule ~durations:sc ~n_physical:2
      (Qc.Circuit.gates circuit)
  in
  let r =
    {
      Schedule.Routed.events;
      initial = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      final = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      makespan;
      n_logical = 2;
    }
  in
  let calibration =
    Arch.Calibration.make ~name:"test" ~one_qubit_fidelity:0.99
      ~two_qubit_fidelity:0.95 ~readout_fidelity:0.9 ~t1_cycles:100.
      ~t2_cycles:100.
  in
  (* gates: 0.99 * 0.95; decoherence: qubit 0 active 3 cycles, qubit 1
     active 2 cycles (first touched at t=1); Tphi = 200 with t1 = t2 = 100 *)
  let tphi = 200. in
  let dec t = exp (-.t /. 100.) *. exp (-.t /. tphi) in
  let expected = 0.99 *. 0.95 *. dec 3. *. dec 2. in
  Alcotest.(check (float 1e-9)) "analytic ESP" expected
    (Sim.Reliability.estimated_success ~calibration ~n_physical:2 r)

let test_reliability_tokyo_vector () =
  (* hand-computed vector on the shipped superconducting (Tokyo) preset:
     H on q0 at [0,1), then SWAP q0<->q1 at [1,7) — the SWAP must cost
     three two-qubit fidelities (decomposed as 3 CX) *)
  let mk_event gate start duration =
    { Schedule.Routed.gate; start; duration; inserted = false }
  in
  let r =
    {
      Schedule.Routed.events =
        [ mk_event (Qc.Gate.h 0) 0 1; mk_event (Qc.Gate.swap 0 1) 1 6 ];
      initial = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      final = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      makespan = 7;
      n_logical = 2;
    }
  in
  let calibration = Arch.Calibration.superconducting in
  (* preset values pinned here on purpose: changing them must wake this
     test up, because BENCH_PR8.json and the t2 issue policy depend on them *)
  Alcotest.(check (float 0.)) "preset f1" 0.997
    (Arch.Calibration.one_qubit_fidelity calibration);
  Alcotest.(check (float 0.)) "preset f2" 0.965
    (Arch.Calibration.two_qubit_fidelity calibration);
  Alcotest.(check (float 0.)) "preset t1" 435.
    (Arch.Calibration.t1_cycles calibration);
  Alcotest.(check (float 0.)) "preset t2" 435.
    (Arch.Calibration.t2_cycles calibration);
  (* t1 = t2 = 435 => 1/Tphi = 1/435 - 1/870 = 1/870 *)
  let dec t = exp (-.t /. 435.) *. exp (-.t /. 870.) in
  let expected = 0.997 *. (0.965 ** 3.) *. dec 7. *. dec 6. in
  Alcotest.(check (float 1e-12)) "tokyo ESP vector" expected
    (Sim.Reliability.estimated_success ~calibration ~n_physical:2 r)

let test_reliability_untouched_qubits_free () =
  (* a qubit never touched by any gate contributes no decoherence, however
     many physical qubits the device has *)
  let mk_event gate start duration =
    { Schedule.Routed.gate; start; duration; inserted = false }
  in
  let r n_physical =
    {
      Schedule.Routed.events = [ mk_event (Qc.Gate.h 0) 0 1 ];
      initial = Arch.Layout.identity ~n_logical:1 ~n_physical;
      final = Arch.Layout.identity ~n_logical:1 ~n_physical;
      makespan = 1;
      n_logical = 1;
    }
  in
  let calibration = Arch.Calibration.superconducting in
  let esp n =
    Sim.Reliability.estimated_success ~calibration ~n_physical:n (r n)
  in
  Alcotest.(check (float 1e-15)) "spectators are free" (esp 2) (esp 20)

let test_calibration_for_durations () =
  (* every calibrated profile resolves to the preset of the same name;
     uniform has no calibration and must say so (the t2 objective and the
     record's esp field both key off this) *)
  List.iter
    (fun d ->
      match Arch.Calibration.for_durations d with
      | Some c ->
        Alcotest.(check string) "preset name matches profile"
          (Arch.Durations.name d) (Arch.Calibration.name c)
      | None ->
        Alcotest.failf "no calibration preset for %s" (Arch.Durations.name d))
    [
      Arch.Durations.superconducting;
      Arch.Durations.ion_trap;
      Arch.Durations.neutral_atom;
    ];
  Alcotest.(check bool) "uniform is uncalibrated" true
    (Arch.Calibration.for_durations Arch.Durations.uniform = None)

let test_reliability_direction () =
  (* a shorter schedule with the same gates must score higher *)
  let calibration = Arch.Calibration.superconducting in
  let gates = [ Qc.Gate.h 0; Qc.Gate.h 1; Qc.Gate.cx 0 1 ] in
  let packed, m1 = Schedule.Asap.schedule ~durations:sc ~n_physical:2 gates in
  (* delay only the two-qubit gate: the qubits now idle for 50 cycles *)
  let stretched =
    List.map
      (fun e ->
        if Qc.Gate.is_two_qubit e.Schedule.Routed.gate then
          { e with Schedule.Routed.start = e.Schedule.Routed.start + 50 }
        else e)
      packed
  in
  let mk events makespan =
    {
      Schedule.Routed.events;
      initial = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      final = Arch.Layout.identity ~n_logical:2 ~n_physical:2;
      makespan;
      n_logical = 2;
    }
  in
  let esp r = Sim.Reliability.estimated_success ~calibration ~n_physical:2 r in
  Alcotest.(check bool) "longer tail costs fidelity" true
    (esp (mk packed m1) > esp (mk stretched (m1 + 50)))

(* ------------------------------------------------------------------ equiv *)

let test_equiv_detects_tampering () =
  let circuit = Workloads.Builders.qft 4 in
  let maqam =
    Arch.Maqam.make ~coupling:(Arch.Devices.linear 4) ~durations:sc
  in
  let initial = Arch.Layout.identity ~n_logical:4 ~n_physical:4 in
  let r = Codar.Remapper.run ~maqam ~initial circuit in
  Alcotest.(check bool) "honest result passes" true
    (Sim.Equiv.routed_equivalent ~maqam ~original:circuit r);
  (* flip one CX direction *)
  let tampered =
    {
      r with
      Schedule.Routed.events =
        (match r.Schedule.Routed.events with
        | e :: rest -> (
          match e.Schedule.Routed.gate with
          | Qc.Gate.Two (k, a, b) ->
            { e with Schedule.Routed.gate = Qc.Gate.Two (k, b, a) } :: rest
          | Qc.Gate.One _ | Qc.Gate.Barrier _ | Qc.Gate.Measure _ ->
            { e with Schedule.Routed.gate = Qc.Gate.x 0 } :: rest)
        | [] -> []);
    }
  in
  Alcotest.(check bool) "tampered result fails" false
    (Sim.Equiv.routed_equivalent ~maqam ~original:circuit tampered)

let () =
  Alcotest.run "sim"
    [
      ( "statevector",
        [
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "x and h" `Quick test_x_and_h;
          Alcotest.test_case "bell" `Quick test_bell;
          Alcotest.test_case "swap" `Quick test_swap_moves_amplitude;
          Alcotest.test_case "fidelity" `Quick test_fidelity_and_inner;
          Alcotest.test_case "measure rejected" `Quick test_measure_rejected;
          Alcotest.test_case "random state" `Quick test_random_state_normalised;
          Alcotest.test_case "embed" `Quick test_embed;
          QCheck_alcotest.to_alcotest prop_unitarity_preserves_norm;
        ] );
      ( "noise",
        [
          Alcotest.test_case "validation" `Quick test_noise_validation;
          Alcotest.test_case "noiseless limit" `Quick test_noiseless_limit;
          Alcotest.test_case "dephasing spares basis" `Quick
            test_dephasing_spares_basis_states;
          Alcotest.test_case "dephasing hurts superpositions" `Quick
            test_dephasing_hurts_superpositions;
          Alcotest.test_case "damping hurts |1>" `Quick
            test_damping_hurts_excited_states;
          Alcotest.test_case "shorter schedule wins" `Quick
            test_shorter_schedule_higher_fidelity;
        ] );
      ( "density",
        [
          Alcotest.test_case "pure state" `Quick test_density_pure_state;
          Alcotest.test_case "channel trace" `Quick test_density_channel_trace;
          Alcotest.test_case "damping analytic" `Quick
            test_density_damping_analytic;
          Alcotest.test_case "trajectory vs density" `Slow
            test_trajectory_matches_density;
          Alcotest.test_case "gate error vs density" `Slow
            test_gate_error_sampler_matches_density;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "analytic" `Quick test_reliability_analytic;
          Alcotest.test_case "tokyo vector" `Quick
            test_reliability_tokyo_vector;
          Alcotest.test_case "spectators free" `Quick
            test_reliability_untouched_qubits_free;
          Alcotest.test_case "calibration lookup" `Quick
            test_calibration_for_durations;
          Alcotest.test_case "direction" `Quick test_reliability_direction;
        ] );
      ( "equiv",
        [ Alcotest.test_case "detects tampering" `Quick test_equiv_detects_tampering ]
      );
    ]
