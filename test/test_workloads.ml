(* Tests for the workload generators: every family is checked semantically
   with the state-vector simulator, and the 71-benchmark suite's invariants
   are pinned down. *)

let complex_close a b = Complex.norm (Complex.sub a b) < 1e-7

let amp sv i = Sim.Statevector.amplitude sv i

(* ------------------------------------------------------------- semantics *)

let test_ghz () =
  let sv = Sim.Statevector.run (Workloads.Builders.ghz 4) in
  let r = 1. /. sqrt 2. in
  Alcotest.(check bool) "|0000> + |1111>" true
    (complex_close (amp sv 0) { Complex.re = r; im = 0. }
    && complex_close (amp sv 15) { Complex.re = r; im = 0. });
  let rest = ref 0. in
  for i = 1 to 14 do
    rest := !rest +. Complex.norm2 (amp sv i)
  done;
  Alcotest.(check (float 1e-9)) "nothing else" 0. !rest

let test_bv_recovers_secret () =
  (* after the algorithm the data register holds the secret exactly *)
  let n = 6 and secret = 0b10110 in
  let sv =
    Sim.Statevector.run (Workloads.Builders.bernstein_vazirani ~n ~secret)
  in
  (* data = qubits 0..4; ancilla is in |-> ; probability mass must sit
     entirely on data = secret *)
  let p = ref 0. in
  for i = 0 to (1 lsl n) - 1 do
    if i land 0b11111 = secret then p := !p +. Complex.norm2 (amp sv i)
  done;
  Alcotest.(check (float 1e-9)) "P(data = secret)" 1. !p

let test_dj () =
  let read_data_zero_mass n sv =
    let p = ref 0. in
    let mask = (1 lsl (n - 1)) - 1 in
    for i = 0 to (1 lsl n) - 1 do
      if i land mask = 0 then p := !p +. Complex.norm2 (amp sv i)
    done;
    !p
  in
  let n = 5 in
  let constant =
    Sim.Statevector.run (Workloads.Builders.deutsch_jozsa ~n ~balanced:false)
  in
  Alcotest.(check (float 1e-9)) "constant -> data all zero" 1.
    (read_data_zero_mass n constant);
  let balanced =
    Sim.Statevector.run (Workloads.Builders.deutsch_jozsa ~n ~balanced:true)
  in
  Alcotest.(check (float 1e-9)) "balanced -> data never zero" 0.
    (read_data_zero_mass n balanced)

let test_adder_adds () =
  let bits = 3 in
  (* prepare a = 5, b = 3 with X gates, run, read b (it becomes a+b) *)
  let a_val = 5 and b_val = 3 in
  let prep =
    List.concat
      [
        List.filteri (fun i _ -> a_val land (1 lsl i) <> 0)
          (List.init bits (fun i -> Qc.Gate.x (1 + i)))
        |> List.map (fun g -> g);
        List.filteri (fun i _ -> b_val land (1 lsl i) <> 0)
          (List.init bits (fun i -> Qc.Gate.x (1 + bits + i)));
      ]
  in
  let n = (2 * bits) + 2 in
  let circuit =
    Qc.Circuit.concat
      (Qc.Circuit.make ~n_qubits:n prep)
      (Workloads.Builders.cuccaro_adder ~bits)
  in
  let sv = Sim.Statevector.run circuit in
  (* expected basis state: a unchanged, b = a+b (mod 2^bits), carry-out *)
  let sum = a_val + b_val in
  let expected =
    (a_val lsl 1)
    lor ((sum land ((1 lsl bits) - 1)) lsl (1 + bits))
    lor (if sum lsr bits <> 0 then 1 lsl ((2 * bits) + 1) else 0)
  in
  Alcotest.(check bool)
    (Fmt.str "5 + 3 = 8: basis %d" expected)
    true
    (complex_close (amp sv expected) Complex.one)

let test_grover_amplifies () =
  let n = 3 and marked = 5 in
  let sv =
    Sim.Statevector.run (Workloads.Builders.grover ~n ~marked ~iterations:2)
  in
  let p_marked = Complex.norm2 (amp sv marked) in
  Alcotest.(check bool)
    (Fmt.str "P(marked) = %.3f >> 1/8" p_marked)
    true (p_marked > 0.8)

let test_w_state () =
  let n = 5 in
  let sv = Sim.Statevector.run (Workloads.Builders.w_state n) in
  let expect = 1. /. float_of_int n in
  for k = 0 to n - 1 do
    Alcotest.(check (float 1e-9))
      (Fmt.str "P(one-hot %d)" k)
      expect
      (Complex.norm2 (amp sv (1 lsl k)))
  done

let test_qft_matches_dft () =
  (* [qft n] is the exact little-endian DFT: amp(y) = ω^{xy}/√N; without the
     reversal layer it is DFT∘R (bit-reversed input). *)
  let n = 3 in
  let size = 1 lsl n in
  let reverse_bits x =
    let r = ref 0 in
    for b = 0 to n - 1 do
      if x land (1 lsl b) <> 0 then r := !r lor (1 lsl (n - 1 - b))
    done;
    !r
  in
  let run_qft ~reversal x =
    let input =
      Qc.Circuit.make ~n_qubits:n
        (List.filteri (fun i _ -> x land (1 lsl i) <> 0)
           (List.init n (fun i -> Qc.Gate.x i)))
    in
    Sim.Statevector.run
      (Qc.Circuit.concat input (Workloads.Builders.qft ~reversal n))
  in
  let check_dft name sv f =
    let ok = ref true in
    for y = 0 to size - 1 do
      let phase =
        2. *. Float.pi *. float_of_int (f y) /. float_of_int size
      in
      let expected =
        {
          Complex.re = cos phase /. sqrt (float_of_int size);
          im = sin phase /. sqrt (float_of_int size);
        }
      in
      if not (complex_close (amp sv y) expected) then ok := false
    done;
    Alcotest.(check bool) name true !ok
  in
  let x = 3 in
  check_dft "exact DFT with reversal" (run_qft ~reversal:true x)
    (fun y -> x * y);
  check_dft "DFT∘R without reversal" (run_qft ~reversal:false x)
    (fun y -> reverse_bits x * y)

let test_phase_estimation () =
  (* phase 0.3125 = 5/16 is exactly representable with 4 counting qubits *)
  let counting = 4 in
  let sv =
    Sim.Statevector.run
      (Workloads.Builders.phase_estimation ~counting ~phase:0.3125)
  in
  (* counting register must read 5 (eigen qubit is bit [counting], set) *)
  let expected = 5 lor (1 lsl counting) in
  Alcotest.(check bool) "reads 5/16" true
    (Complex.norm2 (amp sv expected) > 0.99)

let test_simon_and_qaoa_shapes () =
  let s = Workloads.Builders.simon ~n:3 ~secret:0b101 in
  Alcotest.(check int) "simon width" 6 (Qc.Circuit.n_qubits s);
  let q = Workloads.Builders.qaoa_ring ~n:6 ~layers:2 in
  Alcotest.(check int) "qaoa width" 6 (Qc.Circuit.n_qubits q);
  (* 6 H + 2 layers × (6 rzz + 6 rx) *)
  Alcotest.(check int) "qaoa gates" 30 (Qc.Circuit.length q);
  let t = Workloads.Builders.toffoli_chain ~n:5 ~reps:2 in
  Alcotest.(check int) "toffoli chain gates" (2 * 3 * 15) (Qc.Circuit.length t)

let test_random_circuit_reproducible () =
  let mk () =
    Workloads.Builders.random_circuit ~n:8 ~gates:200 ~two_qubit_fraction:0.4
      ~seed:99
  in
  Alcotest.(check bool) "same seed, same circuit" true
    (Qc.Circuit.equal (mk ()) (mk ()));
  let other =
    Workloads.Builders.random_circuit ~n:8 ~gates:200 ~two_qubit_fraction:0.4
      ~seed:100
  in
  Alcotest.(check bool) "different seed differs" false
    (Qc.Circuit.equal (mk ()) other);
  let c = mk () in
  Alcotest.(check int) "gate count" 200 (Qc.Circuit.length c)

let test_builder_validation () =
  let rejects name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "bv too small" (fun () ->
      Workloads.Builders.bernstein_vazirani ~n:1 ~secret:0);
  rejects "grover bad marked" (fun () ->
      Workloads.Builders.grover ~n:3 ~marked:8 ~iterations:1);
  rejects "qaoa too small" (fun () -> Workloads.Builders.qaoa_ring ~n:2 ~layers:1);
  rejects "adder zero bits" (fun () -> Workloads.Builders.cuccaro_adder ~bits:0);
  rejects "w too small" (fun () -> Workloads.Builders.w_state 1)

(* ----------------------------------------------------------------- boolfn *)

let test_pprm_known () =
  (* parity of 2 bits = x0 XOR x1: monomials {x0} and {x1} *)
  Alcotest.(check (list int)) "parity" [ 1; 2 ]
    (Workloads.Boolfn.pprm ~n:2 (fun x ->
         (x land 1) lxor ((x lsr 1) land 1) = 1));
  (* AND = single monomial {x0 x1} *)
  Alcotest.(check (list int)) "and" [ 3 ]
    (Workloads.Boolfn.pprm ~n:2 (fun x -> x = 3));
  (* constant 1 = the empty monomial *)
  Alcotest.(check (list int)) "const" [ 0 ]
    (Workloads.Boolfn.pprm ~n:2 (fun _ -> true));
  (* OR = x0 + x1 + x0x1 *)
  Alcotest.(check (list int)) "or" [ 1; 2; 3 ]
    (Workloads.Boolfn.pprm ~n:2 (fun x -> x <> 0))

(* exhaustively check the synthesized circuit against the truth table:
   |x⟩|0⟩|0…⟩ must map to |x⟩|f(x)⟩|0…⟩ *)
let check_spec name (spec : Workloads.Boolfn.spec) =
  let circuit = Workloads.Boolfn.synthesize spec in
  let n = Qc.Circuit.n_qubits circuit in
  for x = 0 to (1 lsl spec.inputs) - 1 do
    let sv = Sim.Statevector.init n in
    Sim.Statevector.set_amplitude sv 0 Complex.zero;
    Sim.Statevector.set_amplitude sv x Complex.one;
    Sim.Statevector.apply_circuit sv circuit;
    let expected = x lor (spec.table x lsl spec.inputs) in
    Alcotest.(check bool)
      (Fmt.str "%s(%d) = %d" name x (spec.table x))
      true
      (Complex.norm (Complex.sub (amp sv expected) Complex.one) < 1e-7)
  done

let test_boolfn_synthesis () =
  List.iter (fun (name, spec) -> check_spec name spec)
    Workloads.Boolfn.all_named

let prop_boolfn_random =
  QCheck.Test.make ~count:25 ~name:"random truth tables synthesize correctly"
    QCheck.(pair (int_bound 1000) (int_range 2 4))
    (fun (seed, inputs) ->
      let rng = Random.State.make [| seed |] in
      let rows = Array.init (1 lsl inputs) (fun _ -> Random.State.int rng 4) in
      let spec = { Workloads.Boolfn.inputs; outputs = 2; table = (fun x -> rows.(x)) } in
      let circuit = Workloads.Boolfn.synthesize spec in
      let n = Qc.Circuit.n_qubits circuit in
      let ok = ref true in
      for x = 0 to (1 lsl inputs) - 1 do
        let sv = Sim.Statevector.init n in
        Sim.Statevector.set_amplitude sv 0 Complex.zero;
        Sim.Statevector.set_amplitude sv x Complex.one;
        Sim.Statevector.apply_circuit sv circuit;
        let expected = x lor (spec.table x lsl inputs) in
        if Complex.norm (Complex.sub (amp sv expected) Complex.one) > 1e-7 then
          ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ suite *)

let test_suite_inventory () =
  let all = Workloads.Suite.all in
  Alcotest.(check int) "71 benchmarks" 71 (List.length all);
  let names = List.map (fun (e : Workloads.Suite.entry) -> e.name) all in
  Alcotest.(check int) "unique names" 71
    (List.length (List.sort_uniq String.compare names));
  let thirty_six =
    List.filter (fun (e : Workloads.Suite.entry) -> e.n_qubits = 36) all
  in
  Alcotest.(check int) "exactly three 36-qubit programs" 3
    (List.length thirty_six);
  let max_small =
    List.fold_left
      (fun acc (e : Workloads.Suite.entry) ->
        if e.n_qubits < 36 then max acc e.n_qubits else acc)
      0 all
  in
  Alcotest.(check int) "all other programs fit IBM Q16" 16 max_small;
  let min_q =
    List.fold_left
      (fun acc (e : Workloads.Suite.entry) -> min acc e.n_qubits)
      99 all
  in
  Alcotest.(check int) "smallest has 3 qubits" 3 min_q;
  (* ascending order as plotted in Fig. 8 *)
  let rec ascending = function
    | (a : Workloads.Suite.entry) :: (b :: _ as rest) ->
      a.n_qubits <= b.n_qubits && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by qubit count" true (ascending all)

let test_suite_fitting () =
  Alcotest.(check int) "68 fit on 16 qubits" 68
    (List.length (Workloads.Suite.fitting ~max_qubits:16));
  Alcotest.(check int) "all fit on 54" 71
    (List.length (Workloads.Suite.fitting ~max_qubits:54))

let test_suite_find_and_force () =
  (match Workloads.Suite.find "qft_8" with
  | Some e ->
    let c = Lazy.force e.circuit in
    Alcotest.(check int) "qft_8 width" 8 (Qc.Circuit.n_qubits c);
    Alcotest.(check int) "entry width agrees" e.n_qubits (Qc.Circuit.n_qubits c)
  | None -> Alcotest.fail "qft_8 missing");
  Alcotest.(check bool) "unknown" true (Workloads.Suite.find "nope" = None)

let test_suite_widths_agree () =
  (* entry.n_qubits must match the built circuit for all small entries *)
  List.iter
    (fun (e : Workloads.Suite.entry) ->
      if e.n_qubits <= 12 && e.name <> "rand_16_30k" then
        Alcotest.(check int) (e.name ^ " width") e.n_qubits
          (Qc.Circuit.n_qubits (Lazy.force e.circuit)))
    Workloads.Suite.all

let test_big_benchmark_size () =
  match Workloads.Suite.find "rand_16_30k" with
  | Some e ->
    Alcotest.(check int) "30000 gates" 30000
      (Qc.Circuit.length (Lazy.force e.circuit))
  | None -> Alcotest.fail "rand_16_30k missing"

(* ------------------------------------------------------------- large tier *)

let test_large_tier_inventory () =
  let large = Workloads.Suite.large in
  Alcotest.(check int) "six large benchmarks" 6 (List.length large);
  (* [all] must stay the paper's pinned 71-benchmark envelope: the large
     tier is a separate list, not an extension *)
  Alcotest.(check int) "all still 71" 71 (List.length Workloads.Suite.all);
  let names = List.map (fun (e : Workloads.Suite.entry) -> e.name) large in
  Alcotest.(check int) "unique names" 6
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun (e : Workloads.Suite.entry) ->
      Alcotest.(check bool)
        (e.name ^ ": at least 64 qubits")
        true (e.n_qubits >= 64);
      Alcotest.(check bool)
        (e.name ^ ": not in the pinned 71")
        true
        (not
           (List.exists
              (fun (x : Workloads.Suite.entry) -> x.name = e.name)
              Workloads.Suite.all)))
    large;
  let rec ascending = function
    | (a : Workloads.Suite.entry) :: (b :: _ as rest) ->
      a.n_qubits <= b.n_qubits && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted by qubit count" true (ascending large);
  (* fitting stays an [all]-only view: no large entry leaks in *)
  Alcotest.(check int) "fitting 128 = all" 71
    (List.length (Workloads.Suite.fitting ~max_qubits:128))

let test_large_tier_find () =
  (match Workloads.Suite.find "ghz_128" with
  | Some e -> Alcotest.(check int) "ghz_128 width" 128 e.n_qubits
  | None -> Alcotest.fail "ghz_128 missing");
  (match Workloads.Suite.find "rand_128_100k" with
  | Some e ->
    Alcotest.(check int) "rand_128_100k width" 128 e.n_qubits;
    Alcotest.(check int) "100k gates" 100_000
      (Qc.Circuit.length (Lazy.force e.circuit))
  | None -> Alcotest.fail "rand_128_100k missing");
  match Workloads.Suite.find "qft_64" with
  | Some e ->
    Alcotest.(check int) "qft_64 width" 64
      (Qc.Circuit.n_qubits (Lazy.force e.circuit))
  | None -> Alcotest.fail "qft_64 missing"

(* ------------------------------------------------------------- algorithms *)

let test_algorithms () =
  let all = Workloads.Algorithms.all in
  Alcotest.(check int) "seven famous algorithms" 7 (List.length all);
  List.iter
    (fun (a : Workloads.Algorithms.named) ->
      Alcotest.(check bool)
        (a.name ^ " fits a 3x3 grid")
        true
        (Qc.Circuit.n_qubits a.circuit <= 9))
    all;
  Alcotest.(check bool) "find" true (Workloads.Algorithms.find "qft_5" <> None)

let () =
  Alcotest.run "workloads"
    [
      ( "semantics",
        [
          Alcotest.test_case "ghz" `Quick test_ghz;
          Alcotest.test_case "bernstein-vazirani" `Quick test_bv_recovers_secret;
          Alcotest.test_case "deutsch-jozsa" `Quick test_dj;
          Alcotest.test_case "cuccaro adder" `Quick test_adder_adds;
          Alcotest.test_case "grover" `Quick test_grover_amplifies;
          Alcotest.test_case "w state" `Quick test_w_state;
          Alcotest.test_case "qft = dft" `Quick test_qft_matches_dft;
          Alcotest.test_case "phase estimation" `Quick test_phase_estimation;
          Alcotest.test_case "shapes" `Quick test_simon_and_qaoa_shapes;
          Alcotest.test_case "random reproducible" `Quick
            test_random_circuit_reproducible;
          Alcotest.test_case "validation" `Quick test_builder_validation;
        ] );
      ( "boolfn",
        [
          Alcotest.test_case "pprm" `Quick test_pprm_known;
          Alcotest.test_case "named functions" `Quick test_boolfn_synthesis;
          QCheck_alcotest.to_alcotest prop_boolfn_random;
        ] );
      ( "suite",
        [
          Alcotest.test_case "inventory" `Quick test_suite_inventory;
          Alcotest.test_case "fitting" `Quick test_suite_fitting;
          Alcotest.test_case "find/force" `Quick test_suite_find_and_force;
          Alcotest.test_case "widths agree" `Quick test_suite_widths_agree;
          Alcotest.test_case "30k gates" `Slow test_big_benchmark_size;
        ] );
      ( "large tier",
        [
          Alcotest.test_case "inventory" `Quick test_large_tier_inventory;
          Alcotest.test_case "find/force" `Slow test_large_tier_find;
        ] );
      ("algorithms", [ Alcotest.test_case "seven" `Quick test_algorithms ]);
    ]
